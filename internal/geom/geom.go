// Package geom models the two-dimensional mesh geometry of a tiled
// multicore: core coordinates, dimension-ordered (XY) routing, and hop
// distances. Every higher-level component (the NoC model, the EM² cost
// model, the DP oracle) measures distance through this package so that all
// of them agree on the topology.
package geom

import (
	"fmt"
	"math"
)

// CoreID identifies a core (tile) on the chip. Cores are numbered in
// row-major order: core 0 is at (0,0), core 1 at (1,0), and so on.
type CoreID int

// None is the sentinel "no core" value.
const None CoreID = -1

// Coord is a tile position on the mesh: X grows to the east, Y to the south.
type Coord struct {
	X, Y int
}

// Mesh is a W×H grid of cores with dimension-ordered routing.
// The zero value is not useful; construct with NewMesh.
type Mesh struct {
	w, h int
}

// NewMesh returns a mesh with the given width and height.
// It panics if either dimension is not positive, since a malformed mesh is a
// programming error, not a runtime condition.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("geom: invalid mesh dimensions %dx%d", w, h))
	}
	return Mesh{w: w, h: h}
}

// SquareMesh returns the smallest square mesh holding at least n cores.
// EM² evaluations conventionally use square meshes (8×8 for 64 cores).
func SquareMesh(n int) Mesh {
	if n <= 0 {
		panic(fmt.Sprintf("geom: invalid core count %d", n))
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	return NewMesh(side, side)
}

// Width returns the number of columns.
func (m Mesh) Width() int { return m.w }

// Height returns the number of rows.
func (m Mesh) Height() int { return m.h }

// Cores returns the total number of cores on the mesh.
func (m Mesh) Cores() int { return m.w * m.h }

// Contains reports whether id is a valid core on this mesh.
func (m Mesh) Contains(id CoreID) bool {
	return id >= 0 && int(id) < m.Cores()
}

// CoordOf returns the coordinate of a core. It panics on an invalid id.
func (m Mesh) CoordOf(id CoreID) Coord {
	if !m.Contains(id) {
		panic(fmt.Sprintf("geom: core %d outside %dx%d mesh", id, m.w, m.h))
	}
	return Coord{X: int(id) % m.w, Y: int(id) / m.w}
}

// CoreAt returns the core at a coordinate. It panics if the coordinate is
// outside the mesh.
func (m Mesh) CoreAt(c Coord) CoreID {
	if c.X < 0 || c.X >= m.w || c.Y < 0 || c.Y >= m.h {
		panic(fmt.Sprintf("geom: coord %+v outside %dx%d mesh", c, m.w, m.h))
	}
	return CoreID(c.Y*m.w + c.X)
}

// Hops returns the Manhattan distance between two cores, the number of
// router-to-router links a dimension-ordered packet traverses.
func (m Mesh) Hops(a, b CoreID) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Diameter returns the largest hop distance on the mesh.
func (m Mesh) Diameter() int { return (m.w - 1) + (m.h - 1) }

// MeanHops returns the average hop distance between distinct core pairs,
// used to sanity-check analytical network latencies.
func (m Mesh) MeanHops() float64 {
	n := m.Cores()
	if n < 2 {
		return 0
	}
	var total int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			total += m.Hops(CoreID(a), CoreID(b))
		}
	}
	pairs := n * (n - 1) / 2
	return float64(total) / float64(pairs)
}

// Route returns the sequence of cores a dimension-ordered (X-then-Y) packet
// visits travelling from src to dst, inclusive of both endpoints. XY routing
// is deadlock-free on a mesh, which is why EM² uses it for all six virtual
// networks.
func (m Mesh) Route(src, dst CoreID) []CoreID {
	cs, cd := m.CoordOf(src), m.CoordOf(dst)
	path := make([]CoreID, 0, m.Hops(src, dst)+1)
	cur := cs
	path = append(path, m.CoreAt(cur))
	for cur.X != cd.X {
		cur.X += sign(cd.X - cur.X)
		path = append(path, m.CoreAt(cur))
	}
	for cur.Y != cd.Y {
		cur.Y += sign(cd.Y - cur.Y)
		path = append(path, m.CoreAt(cur))
	}
	return path
}

// Neighbors returns the mesh neighbours of a core in N, E, S, W order,
// omitting directions that fall off the chip edge.
func (m Mesh) Neighbors(id CoreID) []CoreID {
	c := m.CoordOf(id)
	out := make([]CoreID, 0, 4)
	if c.Y > 0 {
		out = append(out, m.CoreAt(Coord{c.X, c.Y - 1}))
	}
	if c.X < m.w-1 {
		out = append(out, m.CoreAt(Coord{c.X + 1, c.Y}))
	}
	if c.Y < m.h-1 {
		out = append(out, m.CoreAt(Coord{c.X, c.Y + 1}))
	}
	if c.X > 0 {
		out = append(out, m.CoreAt(Coord{c.X - 1, c.Y}))
	}
	return out
}

// String implements fmt.Stringer.
func (m Mesh) String() string { return fmt.Sprintf("%dx%d mesh", m.w, m.h) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

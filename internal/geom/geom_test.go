package geom

import (
	"testing"
	"testing/quick"
)

func TestNewMeshPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMesh(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMesh(dims[0], dims[1])
		}()
	}
}

func TestSquareMesh(t *testing.T) {
	tests := []struct {
		n, side int
	}{
		{1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {16, 4}, {17, 5}, {64, 8}, {1000, 32},
	}
	for _, tt := range tests {
		m := SquareMesh(tt.n)
		if m.Width() != tt.side || m.Height() != tt.side {
			t.Errorf("SquareMesh(%d) = %v, want %dx%d", tt.n, m, tt.side, tt.side)
		}
		if m.Cores() < tt.n {
			t.Errorf("SquareMesh(%d) has %d cores, want >= %d", tt.n, m.Cores(), tt.n)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for id := CoreID(0); int(id) < m.Cores(); id++ {
		if got := m.CoreAt(m.CoordOf(id)); got != id {
			t.Fatalf("CoreAt(CoordOf(%d)) = %d", id, got)
		}
	}
}

func TestCoordOfRowMajor(t *testing.T) {
	m := NewMesh(4, 3)
	tests := []struct {
		id CoreID
		c  Coord
	}{
		{0, Coord{0, 0}}, {1, Coord{1, 0}}, {3, Coord{3, 0}},
		{4, Coord{0, 1}}, {7, Coord{3, 1}}, {11, Coord{3, 2}},
	}
	for _, tt := range tests {
		if got := m.CoordOf(tt.id); got != tt.c {
			t.Errorf("CoordOf(%d) = %+v, want %+v", tt.id, got, tt.c)
		}
	}
}

func TestHops(t *testing.T) {
	m := NewMesh(8, 8)
	tests := []struct {
		a, b CoreID
		want int
	}{
		{0, 0, 0},
		{0, 7, 7},
		{0, 56, 7},
		{0, 63, 14},
		{9, 18, 2},  // (1,1) -> (2,2)
		{63, 0, 14}, // symmetric
	}
	for _, tt := range tests {
		if got := m.Hops(tt.a, tt.b); got != tt.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestHopsSymmetricAndTriangle(t *testing.T) {
	m := NewMesh(5, 7)
	f := func(a, b, c uint8) bool {
		x := CoreID(int(a) % m.Cores())
		y := CoreID(int(b) % m.Cores())
		z := CoreID(int(c) % m.Cores())
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if m.Hops(x, y) < 0 {
			return false
		}
		if (m.Hops(x, y) == 0) != (x == y) {
			return false
		}
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	if got := NewMesh(8, 8).Diameter(); got != 14 {
		t.Errorf("8x8 diameter = %d, want 14", got)
	}
	if got := NewMesh(1, 1).Diameter(); got != 0 {
		t.Errorf("1x1 diameter = %d, want 0", got)
	}
}

func TestMeanHops(t *testing.T) {
	// On a 2x1 mesh the only pair is 1 hop apart.
	if got := NewMesh(2, 1).MeanHops(); got != 1 {
		t.Errorf("2x1 mean hops = %v, want 1", got)
	}
	// Known closed form for an n×n mesh: 2·(n²−1)·n / (3·(n²−1)) ... spot
	// check 8x8 against a directly computed value instead of a formula.
	m := NewMesh(8, 8)
	got := m.MeanHops()
	if got <= 4.9 || got >= 5.5 {
		t.Errorf("8x8 mean hops = %v, want ≈5.33", got)
	}
	if NewMesh(1, 1).MeanHops() != 0 {
		t.Error("1x1 mean hops should be 0")
	}
}

func TestRouteProperties(t *testing.T) {
	m := NewMesh(6, 6)
	f := func(a, b uint8) bool {
		src := CoreID(int(a) % m.Cores())
		dst := CoreID(int(b) % m.Cores())
		path := m.Route(src, dst)
		if len(path) != m.Hops(src, dst)+1 {
			return false
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		for i := 1; i < len(path); i++ {
			if m.Hops(path[i-1], path[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteXBeforeY(t *testing.T) {
	m := NewMesh(4, 4)
	// (0,0) -> (2,2): XY routing goes east twice then south twice.
	path := m.Route(0, 10)
	want := []CoreID{0, 1, 2, 6, 10}
	if len(path) != len(want) {
		t.Fatalf("route length = %d, want %d", len(path), len(want))
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %d, want %d", i, path[i], want[i])
		}
	}
}

func TestNeighbors(t *testing.T) {
	m := NewMesh(3, 3)
	tests := []struct {
		id   CoreID
		want int
	}{
		{0, 2}, {1, 3}, {4, 4}, {8, 2}, {2, 2}, {5, 3},
	}
	for _, tt := range tests {
		if got := m.Neighbors(tt.id); len(got) != tt.want {
			t.Errorf("Neighbors(%d) = %v, want %d neighbours", tt.id, got, tt.want)
		}
	}
	// All neighbours must be exactly one hop away.
	for id := CoreID(0); int(id) < m.Cores(); id++ {
		for _, nb := range m.Neighbors(id) {
			if m.Hops(id, nb) != 1 {
				t.Errorf("neighbor %d of %d is %d hops away", nb, id, m.Hops(id, nb))
			}
		}
	}
}

func TestContains(t *testing.T) {
	m := NewMesh(2, 2)
	for _, tt := range []struct {
		id CoreID
		ok bool
	}{{-1, false}, {0, true}, {3, true}, {4, false}, {None, false}} {
		if got := m.Contains(tt.id); got != tt.ok {
			t.Errorf("Contains(%d) = %v, want %v", tt.id, got, tt.ok)
		}
	}
}

func TestString(t *testing.T) {
	if got := NewMesh(8, 8).String(); got != "8x8 mesh" {
		t.Errorf("String() = %q", got)
	}
}

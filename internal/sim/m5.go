package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/wprog"
)

// M5 is the hybrid-coherence battery: the M4 compiled workloads executed
// under the lease-caching schemes — always-migrate as the pure-EM²
// baseline, cached-remote as the pure-caching point, and hybrid (leased
// reads + history-driven write migration) — on both transports, checked
// against the §3 trace model's predictions extended with the lease
// counters. Two properties are demanded per cell:
//
//   - Exactness: the runtime's migration / remote / local / context-flit /
//     lease-hit / lease-miss / lease-inval counters equal the trace
//     model's, on the channel transport and on a real two-node TCP
//     cluster. The lease cache and the virtual-time expiry clock are the
//     same code (core.LeaseCache) in both the model and the machine, so a
//     divergence means the machine's lease lifecycle (grant, fill, expiry,
//     own-write invalidation, drop-on-departure) drifted from the
//     specification.
//
//   - Transport bit-identity: channel and TCP runs at the same seed agree
//     bit-for-bit on final registers and the full per-core metrics
//     breakdown (including the lease counters), and on the final memory
//     image for single-writer workloads. Write-update invalidations ride
//     an advisory frame (FrameLeaseInval) whose delivery timing differs
//     across transports; identity here proves timing never reaches a
//     deterministic surface.
//
// The platform is the M4 one: 2x2 mesh, page-striped placement (which
// reproduces the trace's first-touch homes — DESIGN.md §2), quantum 16,
// GuestContexts 0.

// m5Schemes spans the design space: pure migration, pure caching, and the
// hybrid. The explicit hybrid window (16) is deliberately smaller than
// the default so the workloads exercise virtual-time expiry, not just
// write-update invalidation.
var m5Schemes = []string{"always-migrate", "cached-remote", "hybrid:16"}

// m5Rows runs one compiled workload under every lease-era scheme and
// renders one row per scheme with model/channel/TCP counts side by side.
func m5Rows(name string, cfg workload.Config, seed uint64) [][]string {
	cfg.Seed = seed
	c, err := wprog.CompileWorkload(name, cfg, m3Mesh().Cores())
	if err != nil {
		panic(fmt.Sprintf("sim: m5 %s: %v", name, err))
	}
	var rows [][]string
	for _, schemeName := range m5Schemes {
		scheme, err := machine.ParseScheme(schemeName, m3Mesh())
		if err != nil {
			panic(err)
		}
		model, err := c.Predict(m3Mesh(), scheme, m4Placement(), 0)
		if err != nil {
			panic(fmt.Sprintf("sim: m5 %s/%s: %v", name, schemeName, err))
		}
		want := wprog.ModelCounts(model, scheme)
		ch, chMem, err := m5RunChannel(scheme, c)
		if err != nil {
			panic(fmt.Sprintf("sim: m5 %s/%s: %v", name, schemeName, err))
		}
		tcp, err := m4RunTCP(schemeName, c)
		if err != nil {
			panic(fmt.Sprintf("sim: m5 %s/%s: %v", name, schemeName, err))
		}
		chC, tcpC := wprog.RuntimeCounts(ch), wprog.RuntimeCounts(&tcp.Result)
		verdict := "exact"
		if len(want.Diff(chC)) != 0 || len(want.Diff(tcpC)) != 0 {
			verdict = "MISMATCH(model)"
		} else if err := m5BitIdentical(c, ch, chMem, tcp); err != nil {
			verdict = "MISMATCH(transport)"
		}
		rows = append(rows, stats.FormatRow(name, schemeName,
			fmt.Sprintf("%d/%d/%d", want.Migrations, chC.Migrations, tcpC.Migrations),
			fmt.Sprintf("%d/%d/%d", want.RemoteOps, chC.RemoteOps, tcpC.RemoteOps),
			fmt.Sprintf("%d/%d/%d", want.LocalOps, chC.LocalOps, tcpC.LocalOps),
			fmt.Sprintf("%d-%d-%d", want.LeaseHits, want.LeaseMisses, want.LeaseInvals),
			verdict))
	}
	return rows
}

// m5RunChannel is m4RunChannel plus a memory-image snapshot for the
// transport bit-identity check.
func m5RunChannel(scheme core.Scheme, c *wprog.Compiled) (*machine.Result, map[uint32]uint32, error) {
	m, err := machine.New(machine.Config{
		Mesh:      m3Mesh(),
		Placement: m4Placement(),
		Scheme:    scheme,
		Quantum:   16,
		LogEvents: true,
	}, len(c.Threads))
	if err != nil {
		return nil, nil, err
	}
	for _, pg := range c.Pages {
		m.Preload(pg.Base, c.Mem[pg.Base], pg.Home)
	}
	res, err := m.Run(c.Threads)
	if err != nil {
		return nil, nil, err
	}
	if err := machine.CheckSCFrom(c.Mem, res.Events); err != nil {
		return nil, nil, fmt.Errorf("channel transport: %v", err)
	}
	if err := c.Litmus().Check(m.Read, res.FinalRegs); err != nil {
		return nil, nil, fmt.Errorf("channel transport: %v", err)
	}
	return res, m.MemImage(), nil
}

// m5BitIdentical demands the deterministic surfaces agree bit-for-bit
// across transports: final registers, the full per-core metrics breakdown
// (including lease counters), and — for single-writer workloads — the
// final memory image.
func m5BitIdentical(c *wprog.Compiled, ch *machine.Result, chMem map[uint32]uint32, tcp *machine.ClusterResult) error {
	if len(ch.FinalRegs) != len(tcp.FinalRegs) {
		return fmt.Errorf("final-reg thread counts differ: %d vs %d", len(ch.FinalRegs), len(tcp.FinalRegs))
	}
	for t := range ch.FinalRegs {
		if ch.FinalRegs[t] != tcp.FinalRegs[t] {
			return fmt.Errorf("thread %d final registers differ across transports", t)
		}
	}
	if len(ch.PerCore) != len(tcp.PerCore) {
		return fmt.Errorf("per-core row counts differ: %d vs %d", len(ch.PerCore), len(tcp.PerCore))
	}
	for i := range ch.PerCore {
		if ch.PerCore[i] != tcp.PerCore[i] {
			return fmt.Errorf("core %d metrics differ across transports: %+v vs %+v",
				ch.PerCore[i].Core, ch.PerCore[i], tcp.PerCore[i])
		}
	}
	if !c.Deterministic {
		return nil
	}
	if len(chMem) != len(tcp.Mem) {
		return fmt.Errorf("memory images differ in size: %d vs %d words", len(chMem), len(tcp.Mem))
	}
	//em2:unordered-ok: set-equality check; which differing address is reported first is diagnostic only, the verdict is order-independent
	for a, v := range chMem {
		if tv, ok := tcp.Mem[a]; !ok || tv != v {
			return fmt.Errorf("memory images differ at %#x: %#x vs %#x", a, v, tv)
		}
	}
	return nil
}

// M5Cells decomposes M5: one cell per compiled workload, byte-stable at
// any parallelism (each cell is a pure function of its seed).
func M5Cells(p Platform) CellSet {
	wls := m4Workloads()
	cells := make([]Cell, 0, len(wls))
	for _, w := range wls {
		w := w
		cells = append(cells, Cell{
			Label: w.name,
			Run:   func(seed uint64) [][]string { return m5Rows(w.name, w.cfg, seed) },
		})
	}
	return CellSet{
		Name:  "m5",
		Title: "M5 — hybrid coherence (lease caching) on the real machine vs §3 trace-model predictions (2x2 mesh, page-striped, model/channel/tcp)",
		Headers: []string{
			"workload", "scheme", "migrations", "remote ops", "local ops", "lease h-m-i", "check"},
		Cells: cells,
	}
}

// M5 runs the hybrid-coherence battery serially.
func M5(p Platform) *stats.Table {
	return M5Cells(p).RunSerial(p.Seed)
}

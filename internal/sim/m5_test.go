package sim

import (
	"strings"
	"testing"
)

// TestM5HybridMatchesModel is the acceptance test for the M5 experiment:
// on every compiled workload, under always-migrate, cached-remote and
// hybrid, the runtime's counters — including the lease hit / miss /
// own-write-invalidation counters — must equal the §3 trace-model
// predictions exactly on the channel transport AND across a TCP cluster,
// and the two transports must agree bit-for-bit on every deterministic
// surface. The table must also be byte-deterministic (it is part of the
// sweep registry).
func TestM5HybridMatchesModel(t *testing.T) {
	p := SmallPlatform()
	table := M5(p)
	if table.NumRows() == 0 {
		t.Fatal("M5 produced no rows")
	}
	schemes := make(map[string]bool)
	sawLeaseTraffic := false
	for _, row := range table.Rows() {
		verdict := row[len(row)-1]
		schemes[row[1]] = true
		if verdict != "exact" {
			t.Errorf("%s/%s: %s", row[0], row[1], verdict)
		}
		if row[1] != "always-migrate" && row[len(row)-2] != "0-0-0" {
			sawLeaseTraffic = true
		}
	}
	for _, want := range m5Schemes {
		if !schemes[want] {
			t.Errorf("scheme %s missing from M5 rows", want)
		}
	}
	if !sawLeaseTraffic {
		t.Error("no caching scheme produced any lease traffic; the battery is vacuous")
	}
	if !testing.Short() {
		if again := M5(p).String(); again != table.String() {
			t.Error("M5 table is not deterministic across runs")
		}
	}
}

// TestM5TableShape pins the header contract downstream tooling reads.
func TestM5TableShape(t *testing.T) {
	cs := M5Cells(SmallPlatform())
	if cs.Name != "m5" {
		t.Errorf("cell set name %q", cs.Name)
	}
	if len(cs.Cells) != 3 {
		t.Errorf("cells = %d, want one per compiled workload", len(cs.Cells))
	}
	joined := strings.Join(cs.Headers, "|")
	for _, want := range []string{"workload", "scheme", "migrations", "remote ops", "lease h-m-i", "check"} {
		if !strings.Contains(joined, want) {
			t.Errorf("headers %v missing %q", cs.Headers, want)
		}
	}
}

package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workload"
	"repro/internal/wprog"
)

// M4 extends the M3 runtime-vs-model result from hand-written micro
// address walks to the SPLASH-2 stand-in workloads: each workload's trace
// is compiled to real ISA programs (internal/wprog), executed on the
// concurrent runtime over both transports — in-process channels and a real
// two-node TCP cluster — and the runtime's migration / remote / local /
// context-flit counters must equal the §3 trace model's predictions
// exactly, under every parseable decision scheme.
//
// The platform is the M3 one (2x2 mesh) with page-striped placement: the
// compaction assigns page indices congruent to each page's first-touch home
// mod cores, so page-striping the compacted addresses reproduces the
// original trace's first-touch homes (DESIGN.md §2). GuestContexts is 0, so
// there are no schedule-dependent evictions and the match is exact, with
// the documented M3 offsets (a migrated access completes locally at home;
// flits = migrations × per-context footprint).

// m4Workloads are the compiled workloads and their sizes: small enough for
// a sweep cell, large enough that every scheme sees real migration traffic.
func m4Workloads() []struct {
	name string
	cfg  workload.Config
} {
	return []struct {
		name string
		cfg  workload.Config
	}{
		{"ocean", workload.Config{Threads: 4, Scale: 12, Iters: 1}},
		{"fft", workload.Config{Threads: 4, Scale: 16, Iters: 1}},
		{"barnes", workload.Config{Threads: 4, Scale: 4, Iters: 1}},
	}
}

func m4Placement() placement.Policy {
	return placement.NewPageStriped(placement.DefaultPageBytes, m3Mesh().Cores())
}

// m4RunChannel executes the compiled workload on the channel transport,
// SC-checks from the preload image, and runs the register-summary check.
func m4RunChannel(scheme core.Scheme, c *wprog.Compiled) (*machine.Result, error) {
	m, err := machine.New(machine.Config{
		Mesh:      m3Mesh(),
		Placement: m4Placement(),
		Scheme:    scheme,
		Quantum:   16,
		LogEvents: true,
	}, len(c.Threads))
	if err != nil {
		return nil, err
	}
	for _, pg := range c.Pages {
		m.Preload(pg.Base, c.Mem[pg.Base], pg.Home)
	}
	res, err := m.Run(c.Threads)
	if err != nil {
		return nil, err
	}
	if err := machine.CheckSCFrom(c.Mem, res.Events); err != nil {
		return nil, fmt.Errorf("channel transport: %v", err)
	}
	if err := c.Litmus().Check(m.Read, res.FinalRegs); err != nil {
		return nil, fmt.Errorf("channel transport: %v", err)
	}
	return res, nil
}

// m4RunTCP executes the compiled workload on a two-node TCP-loopback
// cluster (node endpoints hosted in-process), SC-checks, and runs the
// register-summary check.
func m4RunTCP(schemeName string, c *wprog.Compiled) (*machine.ClusterResult, error) {
	mesh := m3Mesh()
	man, err := transport.LocalManifest(2, mesh.Width(), mesh.Height())
	if err != nil {
		return nil, err
	}
	errs := make(chan error, len(man.Nodes))
	for i := range man.Nodes {
		go func(i int) { errs <- machine.ServeNode(man, i) }(i)
	}
	res, err := machine.ClusterRun{
		Manifest: man,
		Config: machine.ClusterConfig{
			Quantum:   16,
			Scheme:    schemeName,
			Placement: fmt.Sprintf("page-striped:%d", placement.DefaultPageBytes),
			LogEvents: true,
		},
		Threads: c.Threads,
		Mem:     c.Mem,
	}.Run()
	for range man.Nodes {
		if e := <-errs; e != nil && err == nil {
			err = fmt.Errorf("tcp node: %v", e)
		}
	}
	if err != nil {
		return nil, err
	}
	if err := machine.CheckSCFrom(c.Mem, res.Events); err != nil {
		return nil, fmt.Errorf("tcp transport: %v", err)
	}
	read := func(a uint32) uint32 { return res.Mem[a] }
	if err := c.Litmus().Check(read, res.FinalRegs); err != nil {
		return nil, fmt.Errorf("tcp transport: %v", err)
	}
	return res, nil
}

// m4Rows runs one compiled workload under every scheme and renders one row
// per scheme with the model/channel/TCP counts side by side.
func m4Rows(name string, cfg workload.Config, seed uint64) [][]string {
	cfg.Seed = seed
	c, err := wprog.CompileWorkload(name, cfg, m3Mesh().Cores())
	if err != nil {
		panic(fmt.Sprintf("sim: m4 %s: %v", name, err))
	}
	var rows [][]string
	for _, schemeName := range m3Schemes {
		scheme, err := machine.ParseScheme(schemeName, m3Mesh())
		if err != nil {
			panic(err)
		}
		model, err := c.Predict(m3Mesh(), scheme, m4Placement(), 0)
		if err != nil {
			panic(fmt.Sprintf("sim: m4 %s/%s: %v", name, schemeName, err))
		}
		want := wprog.ModelCounts(model, scheme)
		ch, err := m4RunChannel(scheme, c)
		if err != nil {
			panic(fmt.Sprintf("sim: m4 %s/%s: %v", name, schemeName, err))
		}
		tcp, err := m4RunTCP(schemeName, c)
		if err != nil {
			panic(fmt.Sprintf("sim: m4 %s/%s: %v", name, schemeName, err))
		}
		chC, tcpC := wprog.RuntimeCounts(ch), wprog.RuntimeCounts(&tcp.Result)
		verdict := "exact"
		if len(want.Diff(chC)) != 0 || len(want.Diff(tcpC)) != 0 {
			verdict = "MISMATCH"
		}
		rows = append(rows, stats.FormatRow(name, schemeName,
			fmt.Sprintf("%d/%d/%d", want.Migrations, chC.Migrations, tcpC.Migrations),
			fmt.Sprintf("%d/%d/%d", want.RemoteOps, chC.RemoteOps, tcpC.RemoteOps),
			fmt.Sprintf("%d/%d/%d", want.LocalOps, chC.LocalOps, tcpC.LocalOps),
			fmt.Sprintf("%d/%d/%d", want.ContextFlits, chC.ContextFlits, tcpC.ContextFlits),
			verdict))
	}
	return rows
}

// M4Cells decomposes M4: one cell per compiled workload. Each cell is a
// pure function of its seed (the seed becomes the workload seed), so the
// table is byte-stable at any parallelism.
func M4Cells(p Platform) CellSet {
	wls := m4Workloads()
	cells := make([]Cell, 0, len(wls))
	for _, w := range wls {
		w := w
		cells = append(cells, Cell{
			Label: w.name,
			Run:   func(seed uint64) [][]string { return m4Rows(w.name, w.cfg, seed) },
		})
	}
	return CellSet{
		Name:  "m4",
		Title: "M4 — compiled SPLASH-2 stand-ins on the real machine vs §3 trace-model predictions (2x2 mesh, page-striped, model/channel/tcp)",
		Headers: []string{
			"workload", "scheme", "migrations", "remote ops", "local ops", "context flits", "check"},
		Cells: cells,
	}
}

// M4 runs the compiled-workload runtime-vs-model comparison serially.
func M4(p Platform) *stats.Table {
	return M4Cells(p).RunSerial(p.Seed)
}

package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFigure1CoversAllPaths(t *testing.T) {
	p := SmallPlatform()
	tbl := Figure1(p)
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, row := range tbl.Rows() {
		if row[1] == "0" {
			t.Errorf("Figure 1 path %q never taken", row[0])
		}
	}
}

// TestFigure2Shape is the quantitative reproduction target: the bimodal
// run-length distribution. The paper reads "about half" of the non-native
// accesses at run length 1 and the rest in long runs; our synthetic OCEAN
// must land in that regime (generous band: each mode holds 20–80 % of the
// mass, and together they dominate).
func TestFigure2Shape(t *testing.T) {
	p := DefaultPlatform()
	scale, iters := 256, 2
	if testing.Short() {
		scale, iters = 128, 1
	}
	tbl, h := Figure2(p, scale, iters)
	if h.Total() == 0 {
		t.Fatal("no runs recorded")
	}
	frac1, fracLong := Figure2Shape(h)
	if frac1 < 0.2 || frac1 > 0.8 {
		t.Errorf("run-length-1 mass = %.2f, want 0.2..0.8 (paper: ~0.5)", frac1)
	}
	if fracLong < 0.15 {
		t.Errorf("long-run mass = %.2f, want >= 0.15 (paper: ~0.5)", fracLong)
	}
	if frac1+fracLong < 0.5 {
		t.Errorf("bimodal mass = %.2f, want the two modes to dominate", frac1+fracLong)
	}
	if !strings.Contains(tbl.String(), "run length") {
		t.Error("table header missing")
	}
	t.Logf("Figure 2 shape: %.1f%% of non-native accesses at run length 1, %.1f%% in runs >= 8",
		100*frac1, 100*fracLong)
}

func TestFigure3TakesBothDecisionPaths(t *testing.T) {
	p := SmallPlatform()
	tbl := Figure3(p)
	rows := tbl.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][1] == "0" {
		t.Error("no migrations under the hybrid scheme")
	}
	if rows[2][1] == "0" {
		t.Error("no remote accesses under the hybrid scheme")
	}
}

func TestTableT1RunsAndAgrees(t *testing.T) {
	p := SmallPlatform()
	tbl := TableT1(p, []int{200, 400})
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestTableT2OracleWinsEverywhere(t *testing.T) {
	p := SmallPlatform()
	workloads := []string{"ocean", "pingpong", "uniform"}
	if testing.Short() {
		workloads = workloads[:2]
	}
	tbl := TableT2(p, workloads, 32, 1)
	for _, row := range tbl.Rows() {
		// ORACLE column (last) must be <= every scheme column.
		oracleCost := atoi(t, row[len(row)-1])
		for i := 1; i < len(row)-1; i++ {
			if atoi(t, row[i]) < oracleCost {
				t.Errorf("%s: scheme column %d (%s) beat the oracle (%s)", row[0], i, row[i], row[len(row)-1])
			}
		}
	}
}

func TestTableT3OracleWins(t *testing.T) {
	p := SmallPlatform()
	tbl := TableT3(p, 32, 1)
	rows := tbl.Rows()
	opt := atoi(t, rows[len(rows)-1][1])
	for _, row := range rows[:len(rows)-1] {
		if atoi(t, row[1]) < opt {
			t.Errorf("depth scheme %s (%s) beat the depth DP (%d)", row[0], row[1], opt)
		}
	}
}

func TestTableT4Structure(t *testing.T) {
	p := SmallPlatform()
	tbl := TableT4(p, []string{"pingpong", "private"}, 32, 1)
	rows := tbl.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// pingpong: CC must show coherence traffic; EM2 must never replicate.
	if atoi(t, rows[0][7]) == 0 {
		t.Error("pingpong produced no invalidations/forwards under CC")
	}
	// private: both systems quiet — CC close to replication 1.
	if rows[1][3] != "1.00" {
		t.Errorf("EM2 replication = %s, must be 1.00 by construction", rows[1][3])
	}
}

func TestTableT5ContextSizes(t *testing.T) {
	p := DefaultPlatform()
	tbl := TableT5(p)
	rows := tbl.Rows()
	// Register context (row 0) must match the paper's 1-2 Kbit band.
	bits := atoi(t, rows[0][1])
	if bits < 1024 || bits > 2048 {
		t.Errorf("register context = %d bits, want within the paper's 1-2 Kbit", bits)
	}
	// Stack depth-1 context must be far smaller.
	d1 := atoi(t, rows[2][1])
	if d1*4 > bits {
		t.Errorf("stack depth-1 context %d not << register context %d", d1, bits)
	}
}

func TestPlatformHelpers(t *testing.T) {
	p := DefaultPlatform()
	if p.Core.Mesh.Cores() != 64 || p.Threads != 64 {
		t.Error("default platform is not the paper's 64/64 setup")
	}
	m := p.modelCore()
	if m.ChargeMemory || m.GuestContexts != 0 {
		t.Error("modelCore must be the §3 model")
	}
	if SmallPlatform().Core.Mesh.Cores() != 16 {
		t.Error("small platform wrong")
	}
	// runScheme propagates engine errors as panics; smoke-test the happy path.
	_ = p
	_ = core.AlwaysMigrate{}
}

// TestCellSeedDerivation pins the determinism contract: seeds are stable
// across calls and distinct across experiments and cell indices, so no two
// cells of a sweep ever share a trace by accident.
func TestCellSeedDerivation(t *testing.T) {
	seen := make(map[uint64]string)
	for _, name := range []string{"fig1", "fig2", "t1", "t2"} {
		for i := 0; i < 8; i++ {
			s := CellSeed(2011, name, i)
			if s != CellSeed(2011, name, i) {
				t.Fatalf("CellSeed(2011, %q, %d) unstable", name, i)
			}
			key := name + "/" + string(rune('0'+i))
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if CellSeed(1, "fig1", 0) == CellSeed(2, "fig1", 0) {
		t.Error("base seed does not reach the derived seed")
	}
}

// TestWrappersMatchCellPath: the serial per-experiment functions are thin
// wrappers over the cell decomposition, so their tables must match a serial
// cell run byte-for-byte — the same property the sweep runner extends to
// parallel execution.
func TestWrappersMatchCellPath(t *testing.T) {
	p := SmallPlatform()
	for _, tt := range []struct {
		name    string
		wrapper func() string
		cells   func() string
	}{
		{"fig1", func() string { return Figure1(p).String() },
			func() string { return Figure1Cells(p).RunSerial(p.Seed).String() }},
		{"fig3", func() string { return Figure3(p).String() },
			func() string { return Figure3Cells(p).RunSerial(p.Seed).String() }},
		{"t1", func() string { return TableT1(p, []int{300, 600}).String() },
			func() string { return TableT1Cells(p, []int{300, 600}).RunSerial(p.Seed).String() }},
		{"t5", func() string { return TableT5(p).String() },
			func() string { return TableT5Cells(p).RunSerial(p.Seed).String() }},
	} {
		if w, c := tt.wrapper(), tt.cells(); w != c {
			t.Errorf("%s: wrapper and cell path disagree:\n--- wrapper ---\n%s\n--- cells ---\n%s", tt.name, w, c)
		}
	}
}

// TestCellsArePure runs one multi-cell experiment's cells twice in reverse
// order and checks the rows are identical — the no-shared-state property
// the parallel runner relies on.
func TestCellsArePure(t *testing.T) {
	p := SmallPlatform()
	cs := TableT4Cells(p, []string{"pingpong", "private"}, 32, 1)
	first := make([][][]string, len(cs.Cells))
	for i, c := range cs.Cells {
		first[i] = c.Run(CellSeed(p.Seed, cs.Name, i))
	}
	for i := len(cs.Cells) - 1; i >= 0; i-- {
		again := cs.Cells[i].Run(CellSeed(p.Seed, cs.Name, i))
		if fmt.Sprint(again) != fmt.Sprint(first[i]) {
			t.Errorf("cell %d (%s) is not a pure function of its seed", i, cs.Cells[i].Label)
		}
	}
}

func atoi(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	var neg bool
	for i, c := range s {
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			t.Fatalf("non-numeric cell %q", s)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v
}

package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
)

// M3 is the runtime-vs-model experiment: the same memory-access sequences
// execute three ways — through the §3 trace-model engine, through the
// concurrent runtime on the in-process channel transport, and through a
// real TCP cluster — under every parseable decision scheme, and the
// runtime-measured message counts must match the model's predictions.
//
// On the deterministic micro-workloads (single-thread address walks, whose
// access stream does not depend on scheduling) the match is *exact*:
//
//   - migrations: identical in all three executions;
//   - remote round trips: identical;
//   - completed local accesses: the runtime counts model.Local +
//     model.Migrations, because a migrated access re-executes and completes
//     locally at the home core (the model books it under "migrated", the
//     runtime's local counter sees the completed access) — the documented,
//     deterministic offset;
//   - context flits: (migrations + evictions) x machine.ContextFlitsFor
//     (with GuestContexts 0 there are no evictions).
//
// The multi-threaded litmus programs are schedule-dependent, so their rows
// assert the schedule-independent properties only: both transports run
// SC-clean and pass the litmus post-condition under every scheme.

// m3Mesh is the experiment platform: a 2x2 mesh with 64-byte striping, so
// four distinct homes and short programs whose immediates survive the wire.
func m3Mesh() geom.Mesh { return geom.NewMesh(2, 2) }

// m3Schemes are the decision schemes under test, by wire name (also
// exercising machine.ParseScheme, the path a cluster node takes).
var m3Schemes = []string{"always-migrate", "always-remote", "distance:1", "history:2"}

// M3MicroLitmuses exposes the deterministic M3 micro-workloads as litmus
// programs, for the benchmark subsystem: em2bench drives the exact access
// sequences whose runtime message counts the M3 experiment validates
// against the model.
func M3MicroLitmuses() []machine.Litmus {
	var lits []machine.Litmus
	for _, m := range m3Micros() {
		lits = append(lits, machine.Litmus{
			Name:          "m3-" + m.name,
			Threads:       []machine.ThreadSpec{{Program: m.program()}},
			Deterministic: true,
		})
	}
	return lits
}

// m3Micro is one deterministic micro-workload: a single thread reading the
// given addresses in order. The same sequence becomes an ISA program (for
// the runtime) and a trace (for the model).
type m3Micro struct {
	name  string
	addrs []uint32
}

// m3Micros spans the decision-relevant shapes: isolated ping-pong accesses
// (runs of 1), long revisited runs (what the history predictor learns), and
// a round-robin walk over every home.
func m3Micros() []m3Micro {
	var micros []m3Micro

	pp := m3Micro{name: "pingpong"}
	for i := 0; i < 8; i++ {
		pp.addrs = append(pp.addrs, 0, 64)
	}
	micros = append(micros, pp)

	runs := m3Micro{name: "runs"}
	for rep := 0; rep < 2; rep++ {
		for _, base := range []uint32{64, 128} {
			for i := uint32(0); i < 6; i++ {
				runs.addrs = append(runs.addrs, base+4*i)
			}
		}
	}
	micros = append(micros, runs)

	walk := m3Micro{name: "walk"}
	for rep := 0; rep < 4; rep++ {
		for c := uint32(0); c < 4; c++ {
			walk.addrs = append(walk.addrs, 64*c)
		}
	}
	return append(micros, walk)
}

// program lowers the address walk to the ISA.
func (m m3Micro) program() []isa.Instr {
	prog := make([]isa.Instr, 0, len(m.addrs)+1)
	for _, a := range m.addrs {
		prog = append(prog, isa.Instr{Op: isa.LW, Rd: 1, Rs: 0, Imm: int32(a)})
	}
	return append(prog, isa.Instr{Op: isa.HALT})
}

// trace lifts the address walk to a single-thread memory trace.
func (m m3Micro) trace() *trace.Trace {
	tr := trace.New("m3-"+m.name, 1)
	for _, a := range m.addrs {
		tr.Append(trace.Access{Thread: 0, Addr: trace.Addr(a)})
	}
	return tr
}

// m3ModelCounts runs the trace through the §3 engine and returns its
// predicted message counts.
func m3ModelCounts(scheme core.Scheme, tr *trace.Trace) (mig, remote, local int64) {
	cfg := core.DefaultConfig()
	cfg.Mesh = m3Mesh()
	cfg.GuestContexts = 0
	cfg.ChargeMemory = false
	eng, err := core.NewEngine(cfg, placement.NewStriped(64, cfg.Mesh.Cores()), scheme)
	if err != nil {
		panic(err)
	}
	res, err := eng.Run(tr, nil)
	if err != nil {
		panic(err)
	}
	return res.Migrations, res.RemoteAccesses, res.Local
}

// m3MachineConfig is the runtime configuration matching m3ModelCounts.
func m3MachineConfig(scheme core.Scheme) machine.Config {
	return machine.Config{
		Mesh:      m3Mesh(),
		Placement: placement.NewStriped(64, m3Mesh().Cores()),
		Scheme:    scheme,
		Quantum:   8,
		LogEvents: true,
	}
}

// m3RunChannel executes lit on the in-process channel transport, SC-checks
// the recorded execution, and runs the litmus post-condition if any.
func m3RunChannel(scheme core.Scheme, lit machine.Litmus) (*machine.Result, error) {
	m, err := machine.New(m3MachineConfig(scheme), len(lit.Threads))
	if err != nil {
		return nil, err
	}
	//em2:unordered-ok: Preload writes each address into its home shard's map; the final image is order-independent
	for a, v := range lit.Mem {
		m.Preload(a, v, 0)
	}
	res, err := m.Run(lit.Threads)
	if err != nil {
		return nil, err
	}
	if err := machine.CheckSCFrom(lit.Mem, res.Events); err != nil {
		return nil, fmt.Errorf("channel transport: %v", err)
	}
	if lit.Check != nil {
		if err := lit.Check(m.Read, res.FinalRegs); err != nil {
			return nil, fmt.Errorf("channel transport: %v", err)
		}
	}
	return res, nil
}

// m3RunTCP executes lit on a two-node TCP-loopback cluster (node endpoints
// hosted in-process), SC-checks, and runs the litmus post-condition.
func m3RunTCP(schemeName string, lit machine.Litmus) (*machine.ClusterResult, error) {
	mesh := m3Mesh()
	man, err := transport.LocalManifest(2, mesh.Width(), mesh.Height())
	if err != nil {
		return nil, err
	}
	errs := make(chan error, len(man.Nodes))
	for i := range man.Nodes {
		go func(i int) { errs <- machine.ServeNode(man, i) }(i)
	}
	res, err := machine.ClusterRun{
		Manifest: man,
		Config: machine.ClusterConfig{
			Quantum:   8,
			Scheme:    schemeName,
			Placement: "striped:64",
			LogEvents: true,
		},
		Threads: lit.Threads,
		Mem:     lit.Mem,
	}.Run()
	for range man.Nodes {
		if e := <-errs; e != nil && err == nil {
			err = fmt.Errorf("tcp node: %v", e)
		}
	}
	if err != nil {
		return nil, err
	}
	if err := machine.CheckSCFrom(lit.Mem, res.Events); err != nil {
		return nil, fmt.Errorf("tcp transport: %v", err)
	}
	if lit.Check != nil {
		read := func(a uint32) uint32 { return res.Mem[a] }
		if err := lit.Check(read, res.FinalRegs); err != nil {
			return nil, fmt.Errorf("tcp transport: %v", err)
		}
	}
	return res, nil
}

// m3MicroRows runs one micro-workload under every scheme and renders one
// row per scheme with the model/channel/TCP counts side by side.
func m3MicroRows(m m3Micro) [][]string {
	lit := machine.Litmus{Name: m.name, Threads: []machine.ThreadSpec{{Program: m.program()}}}
	tr := m.trace()
	var rows [][]string
	for _, name := range m3Schemes {
		scheme, err := machine.ParseScheme(name, m3Mesh())
		if err != nil {
			panic(err)
		}
		mig, remote, local := m3ModelCounts(scheme, tr)
		ch, err := m3RunChannel(scheme, lit)
		if err != nil {
			panic(fmt.Sprintf("sim: m3 %s/%s: %v", m.name, name, err))
		}
		tcp, err := m3RunTCP(name, lit)
		if err != nil {
			panic(fmt.Sprintf("sim: m3 %s/%s: %v", m.name, name, err))
		}
		// The model books a migrated access under "migrated"; the runtime's
		// local counter additionally sees it complete at the home core.
		wantLocal := local + mig
		wantFlits := mig * machine.ContextFlitsFor(scheme)
		ok := mig == ch.Migrations && mig == tcp.Migrations &&
			remote == ch.RemoteReads+ch.RemoteWrites && remote == tcp.RemoteReads+tcp.RemoteWrites &&
			wantLocal == ch.LocalOps && wantLocal == tcp.LocalOps &&
			wantFlits == ch.ContextFlits && wantFlits == tcp.ContextFlits
		verdict := "exact"
		if !ok {
			verdict = "MISMATCH"
		}
		rows = append(rows, stats.FormatRow(m.name, name,
			fmt.Sprintf("%d/%d/%d", mig, ch.Migrations, tcp.Migrations),
			fmt.Sprintf("%d/%d/%d", remote, ch.RemoteReads+ch.RemoteWrites, tcp.RemoteReads+tcp.RemoteWrites),
			fmt.Sprintf("%d/%d/%d", wantLocal, ch.LocalOps, tcp.LocalOps),
			fmt.Sprintf("%d/%d/%d", wantFlits, ch.ContextFlits, tcp.ContextFlits),
			verdict))
	}
	return rows
}

// m3LitmusRows runs one litmus program under every scheme on both
// transports. Counts are schedule-dependent, so the row reports only the
// schedule-independent verdict: SC-clean and litmus-clean everywhere.
func m3LitmusRows(lit machine.Litmus) [][]string {
	var rows [][]string
	for _, name := range m3Schemes {
		scheme, err := machine.ParseScheme(name, m3Mesh())
		if err != nil {
			panic(err)
		}
		verdict := "sc+litmus ok"
		if _, err := m3RunChannel(scheme, lit); err != nil {
			verdict = err.Error()
		} else if _, err := m3RunTCP(name, lit); err != nil {
			verdict = err.Error()
		}
		rows = append(rows, stats.FormatRow(lit.Name, name, "-", "-", "-", "-", verdict))
	}
	return rows
}

// M3Cells decomposes M3: one cell per micro-workload and one per litmus
// program. Every cell is deterministic (the micro counts exactly, the
// litmus verdicts by SC), so the table is byte-stable at any parallelism.
func M3Cells(p Platform) CellSet {
	micros := m3Micros()
	cells := make([]Cell, 0, len(micros)+2)
	for _, m := range micros {
		m := m
		cells = append(cells, Cell{
			Label: m.name,
			Run:   func(uint64) [][]string { return m3MicroRows(m) },
		})
	}
	for _, lit := range []machine.Litmus{
		machine.AtomicCounterLitmus(4, 10),
		machine.MessagePassingLitmus(128), // flag homed on the far TCP node
	} {
		lit := lit
		cells = append(cells, Cell{
			Label: lit.Name,
			Run:   func(uint64) [][]string { return m3LitmusRows(lit) },
		})
	}
	return CellSet{
		Name:  "m3",
		Title: "M3 — concurrent-runtime message counts vs §3 trace-model predictions (2x2 mesh, striped:64, model/channel/tcp)",
		Headers: []string{
			"workload", "scheme", "migrations", "remote ops", "local ops", "context flits", "check"},
		Cells: cells,
	}
}

// M3 runs the runtime-vs-model comparison serially.
func M3(p Platform) *stats.Table {
	return M3Cells(p).RunSerial(p.Seed)
}

package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/dircc"
	"repro/internal/oracle"
	"repro/internal/stackm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// A Cell is the unit of parallelism of an experiment: an independently
// runnable piece (typically one workload or one scale point) that produces a
// contiguous block of table rows. A cell must be a pure function of the
// platform it closed over and the seed it is given — no shared mutable state
// — so that a sweep may execute cells in any order, on any number of
// workers, and still assemble byte-identical tables.
type Cell struct {
	Label string
	Run   func(seed uint64) [][]string
}

// CellSet is one experiment decomposed into cells plus the shape of the
// table the cells' rows assemble into. Row order is cell order.
type CellSet struct {
	Name    string // registry name (fig1, t2, ...)
	Title   string
	Headers []string
	Cells   []Cell
}

// CellSeed derives the deterministic per-cell seed: a hash of the base seed,
// the experiment name, and the cell index. Every runner — the serial
// wrappers in this package and the parallel sweep in internal/sweep — uses
// this same derivation, which is what makes results identical at any
// parallelism level.
func CellSeed(base uint64, experiment string, cell int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], base)
	h.Write(buf[:])
	h.Write([]byte(experiment))
	binary.LittleEndian.PutUint64(buf[:], uint64(cell))
	h.Write(buf[:])
	return h.Sum64()
}

// NewTable returns the empty table with the set's title and headers.
func (cs CellSet) NewTable() *stats.Table {
	return stats.NewTable(cs.Title, cs.Headers...)
}

// RunSerial executes every cell in order on the calling goroutine and
// assembles the table. base is the sweep-level seed (normally Platform.Seed).
func (cs CellSet) RunSerial(base uint64) *stats.Table {
	t := cs.NewTable()
	for i, c := range cs.Cells {
		for _, row := range c.Run(CellSeed(base, cs.Name, i)) {
			t.AddStrings(row)
		}
	}
	return t
}

// countOutcomes runs tr through an engine and tallies the outcome of every
// access — the flow-chart counting shared by Figures 1 and 3.
func countOutcomes(cfg core.Config, p Platform, scheme core.Scheme, tr *trace.Trace) map[core.Outcome]int64 {
	eng, err := core.NewEngine(cfg, p.firstTouch(), scheme)
	if err != nil {
		panic(err)
	}
	counts := make(map[core.Outcome]int64)
	if _, err := eng.Run(tr, func(_ int, _ core.AccessInfo, o core.Outcome) { counts[o]++ }); err != nil {
		panic(err)
	}
	return counts
}

// Figure1Cells decomposes Figure 1: a single cell driving the hotspot
// micro-trace through the EM² flow chart and counting the path taken per
// access.
func Figure1Cells(p Platform) CellSet {
	return CellSet{
		Name:    "fig1",
		Title:   "Figure 1 — the life of a memory access under EM2 (path counts)",
		Headers: []string{"path", "accesses"},
		Cells: []Cell{{
			Label: "hotspot",
			Run: func(seed uint64) [][]string {
				cfg := p.Core
				cfg.GuestContexts = 1
				cfg.ChargeMemory = false
				tr := workload.Hotspot(workload.Config{Threads: p.Threads, Scale: 64, Iters: 2, Seed: seed})
				counts := countOutcomes(cfg, p, core.AlwaysMigrate{}, tr)
				return [][]string{
					stats.FormatRow("cacheable at current core -> access memory & continue", counts[core.OutcomeLocal]),
					stats.FormatRow("migrate to home core (guest context free)", counts[core.OutcomeMigrated]),
					stats.FormatRow("migrate to home core, evicting a guest to its native core", counts[core.OutcomeMigratedEvict]),
				}
			},
		}},
	}
}

// Figure2Cells decomposes Figure 2: a single OCEAN run binned by run length.
func Figure2Cells(p Platform, scale, iters int) CellSet {
	return CellSet{
		Name: "fig2",
		Title: fmt.Sprintf("Figure 2 — accesses to non-native cores by run length (ocean, %d cores/%d threads, first touch)",
			p.Core.Mesh.Cores(), p.Threads),
		Headers: []string{"run length", "runs", "accesses (runs x length)", "share of non-native accesses"},
		Cells: []Cell{{
			Label: "ocean",
			Run: func(seed uint64) [][]string {
				rows, _ := figure2Run(p, scale, iters, seed)
				return rows
			},
		}},
	}
}

// figure2Run is the shared body of Figure2 and its cell: one OCEAN run,
// returning the table rows and the raw run-length histogram.
func figure2Run(p Platform, scale, iters int, seed uint64) ([][]string, *stats.Hist) {
	tr := workload.Ocean(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: seed})
	res := p.runScheme(tr, core.AlwaysMigrate{})
	h := res.RunLengths

	var rows [][]string
	var shown int64
	for l := 1; l < h.Bound(); l++ {
		if c := h.Count(l); c > 0 {
			accesses := int64(l) * c
			shown += accesses
			rows = append(rows, stats.FormatRow(l, c, accesses,
				fmt.Sprintf("%.1f%%", 100*float64(accesses)/float64(h.Sum()))))
		}
	}
	if h.Overflow() > 0 {
		tail := res.NonNative - shown
		rows = append(rows, stats.FormatRow(fmt.Sprintf("%d+", h.Bound()), h.Overflow(), tail,
			fmt.Sprintf("%.1f%%", 100*float64(tail)/float64(h.Sum()))))
	}
	// The paper's headline reading ("about half of the accesses migrate
	// after one memory reference, while the other half keep accessing
	// memory at the core where they have migrated") as summary rows, so
	// every output mode of the sweep carries the shape claim.
	f1, fl := Figure2Shape(h)
	rows = append(rows,
		stats.FormatRow("(shape) runs of length 1", "", "", fmt.Sprintf("%.1f%%", 100*f1)),
		stats.FormatRow("(shape) runs of length >= 8", "", "", fmt.Sprintf("%.1f%%", 100*fl)))
	return rows, h
}

// Figure3Cells decomposes Figure 3: a single OCEAN run under the hybrid
// distance scheme, counting the decision path per access.
func Figure3Cells(p Platform) CellSet {
	return CellSet{
		Name:    "fig3",
		Title:   "Figure 3 — the life of a memory access under EM2-RA (path counts, distance<=3 decision)",
		Headers: []string{"path", "accesses"},
		Cells: []Cell{{
			Label: "ocean",
			Run: func(seed uint64) [][]string {
				cfg := p.modelCore()
				tr := workload.Ocean(workload.Config{Threads: p.Threads, Scale: 64, Iters: 1, Seed: seed})
				counts := countOutcomes(cfg, p, core.NewDistance(cfg.Mesh, 3), tr)
				return [][]string{
					stats.FormatRow("cacheable at current core -> access memory & continue", counts[core.OutcomeLocal]),
					stats.FormatRow("decision: migrate to home core", counts[core.OutcomeMigrated]+counts[core.OutcomeMigratedEvict]),
					stats.FormatRow("decision: remote request + data/ack reply", counts[core.OutcomeRemote]),
				}
			},
		}},
	}
}

// TableT1Cells decomposes T1 into one cell per trace length. Each cell runs
// both DP variants and the O(N) evaluator on the same synthetic steps and
// reports their (deterministic) model costs; the dense/sparse agreement
// check is the §3 cross-validation. Wall-clock scaling lives in the root
// benchmarks (BenchmarkTableT1OracleDP), keeping this table byte-stable.
func TableT1Cells(p Platform, lengths []int) CellSet {
	cfg := p.modelCore()
	cells := make([]Cell, len(lengths))
	for i, n := range lengths {
		n := n
		cells[i] = Cell{
			Label: fmt.Sprintf("N=%d", n),
			Run: func(seed uint64) [][]string {
				steps := syntheticSteps(n, cfg.Mesh.Cores(), seed)
				dense := oracle.OptimalDense(cfg, steps, 0)
				sparse := oracle.OptimalSparse(cfg, steps, 0)
				eval := oracle.EvaluateScheme(cfg, steps, 0, core.AlwaysMigrate{}, 0)
				if dense.Cost != sparse.Cost {
					panic("sim: dense/sparse optimum mismatch")
				}
				return [][]string{stats.FormatRow(n, cfg.Mesh.Cores(), dense.Cost, sparse.Cost, eval)}
			},
		}
	}
	return CellSet{
		Name:    "t1",
		Title:   "T1 — §3 dynamic program optimum vs O(N) scheme evaluation (model cycles)",
		Headers: []string{"N (accesses)", "P (cores)", "dense DP cost", "sparse DP cost", "always-migrate eval"},
		Cells:   cells,
	}
}

// TableT2Cells decomposes T2 into one cell per workload: every decision
// scheme plus the DP oracle run on that workload's trace, so the
// within-row comparison stays on a single trace.
func TableT2Cells(p Platform, workloads []string, scale, iters int) CellSet {
	cfg := p.modelCore()
	cells := make([]Cell, len(workloads))
	for i, name := range workloads {
		name := name
		cells[i] = Cell{
			Label: name,
			Run: func(seed uint64) [][]string {
				g, err := workload.Get(name)
				if err != nil {
					panic(err)
				}
				tr := g(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: seed})
				am := p.runScheme(tr, core.AlwaysMigrate{}).Cycles
				ar := p.runScheme(tr, core.AlwaysRemote{}).Cycles
				di := p.runScheme(tr, core.NewDistance(cfg.Mesh, 3)).Cycles
				hi := p.runScheme(tr, core.NewHistory(2)).Cycles
				opt := oracle.OptimalForTrace(cfg, tr, p.firstTouch()).Cost
				return [][]string{stats.FormatRow(name, am, ar, di, hi, opt)}
			},
		}
	}
	return CellSet{
		Name:    "t2",
		Title:   "T2 — decision schemes vs DP oracle (total network cycles, lower is better)",
		Headers: []string{"workload", "always-migrate", "always-remote", "distance<=3", "history>=2", "ORACLE (DP)"},
		Cells:   cells,
	}
}

// TableT3Cells decomposes T3 as a single cell: all depth schemes and the
// depth DP must replay the same stack-augmented trace for the rows to be
// comparable, so the whole table is one unit of work.
func TableT3Cells(p Platform, scale, iters int) CellSet {
	return CellSet{
		Name:  "t3",
		Title: "T3 — stack-depth schemes vs depth DP (ocean with stack deltas)",
		Headers: []string{
			"scheme", "cycles", "migrations", "forced returns", "mean depth", "bits moved"},
		Cells: []Cell{{
			Label: "ocean+stack",
			Run: func(seed uint64) [][]string {
				ccfg := p.modelCore()
				scfg := p.Stack
				base := workload.Ocean(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: seed})
				tr := workload.WithStackDeltas(base, seed+1)
				steps := stackm.StepsForTrace(tr, p.firstTouch(), ccfg.Mesh.Cores())

				var rows [][]string
				for _, mk := range []func() stackm.DepthScheme{
					func() stackm.DepthScheme { return stackm.MinimalDepth{} },
					func() stackm.DepthScheme { return stackm.FixedDepth{K: 2} },
					func() stackm.DepthScheme { return stackm.FixedDepth{K: 4} },
					func() stackm.DepthScheme { return stackm.HalfDepth{Capacity: scfg.Capacity} },
					func() stackm.DepthScheme { return stackm.FullDepth{} },
				} {
					c := stackm.SchemeCostForTrace(ccfg, scfg, steps, ccfg.Mesh.Cores(), mk)
					rows = append(rows, stats.FormatRow(mk().Name(), c.Cycles, c.Migrations, c.ForcedReturns,
						fmt.Sprintf("%.2f", c.MeanDepth()), c.BitsMoved))
				}
				opt := stackm.OptimalDepthCostForTrace(ccfg, scfg, steps, ccfg.Mesh.Cores())
				rows = append(rows, stats.FormatRow("ORACLE (depth DP)", opt, "-", "-", "-", "-"))
				return rows
			},
		}},
	}
}

// TableT4Cells decomposes T4 into one cell per workload: EM² and the
// directory-coherence baseline on the same trace.
func TableT4Cells(p Platform, workloads []string, scale, iters int) CellSet {
	cells := make([]Cell, len(workloads))
	for i, name := range workloads {
		name := name
		cells[i] = Cell{
			Label: name,
			Run: func(seed uint64) [][]string {
				g, err := workload.Get(name)
				if err != nil {
					panic(err)
				}
				tr := g(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: seed})

				em := p.runScheme(tr, core.AlwaysMigrate{})

				ccEng, err := dircc.NewEngine(p.CC, p.firstTouch())
				if err != nil {
					panic(err)
				}
				cc, err := ccEng.Run(tr)
				if err != nil {
					panic(err)
				}
				return [][]string{stats.FormatRow(name, em.Cycles, em.Traffic, "1.00",
					cc.Cycles, cc.Traffic, fmt.Sprintf("%.2f", cc.ReplicationFactor),
					cc.Invalidations+cc.Forwards)}
			},
		}
	}
	return CellSet{
		Name:  "t4",
		Title: "T4 — EM2 vs directory cache coherence (same mesh, links, and placement)",
		Headers: []string{
			"workload", "EM2 cycles", "EM2 traffic", "EM2 repl", "CC cycles", "CC traffic", "CC repl", "CC inval+fwd"},
		Cells: cells,
	}
}

// TableT5Cells decomposes T5: a single seed-independent arithmetic cell.
func TableT5Cells(p Platform) CellSet {
	return CellSet{
		Name:    "t5",
		Title:   "T5 — migrated context size (bits) and one-way migration latency across the 8x8 mesh diameter",
		Headers: []string{"context", "bits", "flits", "latency (cycles)"},
		Cells: []Cell{{
			Label: "contexts",
			Run: func(uint64) [][]string {
				cfg := p.Core
				hops := cfg.Mesh.Diameter()
				var rows [][]string
				row := func(name string, bits int) {
					rows = append(rows, stats.FormatRow(name, bits, cfg.NoC.Flits(bits), cfg.NoC.Latency(hops, bits)))
				}
				row("register file (32x32b + PC)", cfg.ContextBits)
				row("register file + TLB (paper upper bound)", 2048)
				for _, d := range []int{1, 2, 4, 8, 16} {
					if d <= p.Stack.Capacity {
						row(fmt.Sprintf("stack, depth %d", d), p.Stack.CtxBits(d))
					}
				}
				return rows
			},
		}},
	}
}

// Package sim is the experiment harness: one function per paper artifact
// (Figures 1–3) and per derived table (T1–T5 of DESIGN.md §4), each
// returning a stats.Table whose rows are what the paper reports.
//
// Every experiment is decomposed into Cells (see cells.go): independent
// units of work — typically one workload or one scale point — that are pure
// functions of the platform and a derived seed. The serial entry points
// below (Figure1, TableT2, ...) run the cells in order on one goroutine;
// internal/sweep fans the same cells out across a worker pool and assembles
// byte-identical tables. cmd/figures is a thin CLI over the sweep registry,
// and the root-level benchmarks wrap these functions so `go test -bench`
// regenerates everything.
package sim

import (
	"repro/internal/core"
	"repro/internal/dircc"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/placement"
	"repro/internal/stackm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Platform bundles the machine configuration shared by all experiments.
type Platform struct {
	Core    core.Config
	Stack   stackm.Config
	CC      dircc.Config
	Threads int
	Seed    uint64
}

// DefaultPlatform reproduces the paper's evaluation setup: 64 cores / 64
// threads on an 8×8 mesh, 16 KB L1 + 64 KB L2, first-touch placement.
func DefaultPlatform() Platform {
	return Platform{
		Core:    core.DefaultConfig(),
		Stack:   stackm.DefaultConfig(),
		CC:      dircc.DefaultConfig(),
		Threads: 64,
		Seed:    2011, // SPAA'11
	}
}

// SmallPlatform is a 16-core variant for fast tests.
func SmallPlatform() Platform {
	p := DefaultPlatform()
	p.Core.Mesh = geom.NewMesh(4, 4)
	p.CC.Mesh = p.Core.Mesh
	p.Threads = 16
	return p
}

// modelCore returns the §3-model variant of the platform's core config.
func (p Platform) modelCore() core.Config {
	cfg := p.Core
	cfg.GuestContexts = 0
	cfg.ChargeMemory = false
	return cfg
}

func (p Platform) firstTouch() placement.Policy {
	return placement.NewFirstTouch(workload.PageBytes)
}

// runScheme executes tr under a scheme at model fidelity.
func (p Platform) runScheme(tr *trace.Trace, s core.Scheme) *core.Result {
	eng, err := core.NewEngine(p.modelCore(), p.firstTouch(), s)
	if err != nil {
		panic(err)
	}
	res, err := eng.Run(tr, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// Figure1 exercises every path of the paper's Figure 1 flow chart on a
// directed micro-trace and tabulates how many accesses took each path:
// local hit, migration, and migration-with-eviction.
func Figure1(p Platform) *stats.Table {
	return Figure1Cells(p).RunSerial(p.Seed)
}

// Figure2 reproduces the run-length histogram of the paper's Figure 2: the
// number of accesses to memory cached at non-native cores for an OCEAN run,
// binned by run length, on 64 cores/64 threads with first-touch placement.
// It returns the rendered table plus the raw histogram.
func Figure2(p Platform, scale, iters int) (*stats.Table, *stats.Hist) {
	cs := Figure2Cells(p, scale, iters)
	rows, h := figure2Run(p, scale, iters, CellSeed(p.Seed, cs.Name, 0))
	t := cs.NewTable()
	for _, row := range rows {
		t.AddStrings(row)
	}
	return t, h
}

// Figure2Shape summarizes the paper's headline reading of Figure 2: "about
// half of the accesses migrate after one memory reference, while the other
// half keep accessing memory at the core where they have migrated."
func Figure2Shape(h *stats.Hist) (fracLen1, fracLong float64) {
	if h.Sum() == 0 {
		return 0, 0
	}
	fracLen1 = float64(h.Count(1)) / float64(h.Sum())
	var longMass int64
	for l := 8; l < h.Bound(); l++ {
		longMass += int64(l) * h.Count(l)
	}
	// Overflow mass: total minus accounted.
	var accounted int64
	for l := 1; l < h.Bound(); l++ {
		accounted += int64(l) * h.Count(l)
	}
	longMass += h.Sum() - accounted
	fracLong = float64(longMass) / float64(h.Sum())
	return fracLen1, fracLong
}

// Figure3 exercises the EM²-RA flow of the paper's Figure 3 with a hybrid
// decision scheme and tabulates the path taken per access.
func Figure3(p Platform) *stats.Table {
	return Figure3Cells(p).RunSerial(p.Seed)
}

// TableT1 cross-validates the §3 dynamic program: the dense and sparse DP
// variants must agree on the optimal cost, and the O(N) scheme evaluator
// bounds it from above, across trace lengths. The table reports model costs
// (deterministic); wall-clock scaling of the same code is measured by
// BenchmarkTableT1OracleDP in the root benchmarks.
func TableT1(p Platform, lengths []int) *stats.Table {
	return TableT1Cells(p, lengths).RunSerial(p.Seed)
}

// syntheticSteps builds a bimodal step sequence (isolated accesses + runs)
// for the DP.
func syntheticSteps(n, cores int, seed uint64) []oracle.Step {
	steps := make([]oracle.Step, 0, n)
	state := seed
	rnd := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	for len(steps) < n {
		home := geom.CoreID(rnd(cores))
		if rnd(2) == 0 {
			steps = append(steps, oracle.Step{Home: home})
		} else {
			run := 2 + rnd(20)
			for j := 0; j < run && len(steps) < n; j++ {
				steps = append(steps, oracle.Step{Home: home, Write: j%3 == 0})
			}
		}
	}
	return steps
}

// TableT2 compares decision schemes against the DP oracle across workloads
// (§3's claim: the hybrid, decided well, beats both pure EM² and pure
// remote access; the oracle upper-bounds everything).
func TableT2(p Platform, workloads []string, scale, iters int) *stats.Table {
	return TableT2Cells(p, workloads, scale, iters).RunSerial(p.Seed)
}

// TableT3 compares stack-depth schemes against the depth DP (§4's claim:
// the same model framework bounds depth-decision schemes).
func TableT3(p Platform, scale, iters int) *stats.Table {
	return TableT3Cells(p, scale, iters).RunSerial(p.Seed)
}

// TableT4 compares EM² against the directory-coherence baseline on the §2
// axes: network cycles, traffic, and data replication.
func TableT4(p Platform, workloads []string, scale, iters int) *stats.Table {
	return TableT4Cells(p, workloads, scale, iters).RunSerial(p.Seed)
}

// TableT5 tabulates migrated context sizes: the register-file context the
// paper cites (1–2 Kbit) against stack contexts at increasing depths —
// the motivation for §4.
func TableT5(p Platform) *stats.Table {
	return TableT5Cells(p).RunSerial(p.Seed)
}

// Package sim is the experiment harness: one function per paper artifact
// (Figures 1–3) and per derived table (T1–T5 of DESIGN.md §4), each
// returning a stats.Table whose rows are what the paper reports. cmd/figures
// is a thin CLI over this package, and the root-level benchmarks wrap these
// functions so `go test -bench` regenerates everything.
package sim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dircc"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/placement"
	"repro/internal/stackm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Platform bundles the machine configuration shared by all experiments.
type Platform struct {
	Core    core.Config
	Stack   stackm.Config
	CC      dircc.Config
	Threads int
	Seed    uint64
}

// DefaultPlatform reproduces the paper's evaluation setup: 64 cores / 64
// threads on an 8×8 mesh, 16 KB L1 + 64 KB L2, first-touch placement.
func DefaultPlatform() Platform {
	return Platform{
		Core:    core.DefaultConfig(),
		Stack:   stackm.DefaultConfig(),
		CC:      dircc.DefaultConfig(),
		Threads: 64,
		Seed:    2011, // SPAA'11
	}
}

// SmallPlatform is a 16-core variant for fast tests.
func SmallPlatform() Platform {
	p := DefaultPlatform()
	p.Core.Mesh = geom.NewMesh(4, 4)
	p.CC.Mesh = p.Core.Mesh
	p.Threads = 16
	return p
}

// modelCore returns the §3-model variant of the platform's core config.
func (p Platform) modelCore() core.Config {
	cfg := p.Core
	cfg.GuestContexts = 0
	cfg.ChargeMemory = false
	return cfg
}

func (p Platform) firstTouch() placement.Policy {
	return placement.NewFirstTouch(workload.PageBytes)
}

// runScheme executes tr under a scheme at model fidelity.
func (p Platform) runScheme(tr *trace.Trace, s core.Scheme) *core.Result {
	eng, err := core.NewEngine(p.modelCore(), p.firstTouch(), s)
	if err != nil {
		panic(err)
	}
	res, err := eng.Run(tr, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// Figure1 exercises every path of the paper's Figure 1 flow chart on a
// directed micro-trace and tabulates how many accesses took each path:
// local hit, migration, and migration-with-eviction.
func Figure1(p Platform) *stats.Table {
	cfg := p.Core
	cfg.GuestContexts = 1
	cfg.ChargeMemory = false
	tr := workload.Hotspot(workload.Config{Threads: p.Threads, Scale: 64, Iters: 2, Seed: p.Seed})
	eng, err := core.NewEngine(cfg, p.firstTouch(), core.AlwaysMigrate{})
	if err != nil {
		panic(err)
	}
	counts := make(map[core.Outcome]int64)
	if _, err := eng.Run(tr, func(_ int, _ core.AccessInfo, o core.Outcome) { counts[o]++ }); err != nil {
		panic(err)
	}
	t := stats.NewTable("Figure 1 — the life of a memory access under EM2 (path counts)",
		"path", "accesses")
	t.AddRow("cacheable at current core -> access memory & continue", counts[core.OutcomeLocal])
	t.AddRow("migrate to home core (guest context free)", counts[core.OutcomeMigrated])
	t.AddRow("migrate to home core, evicting a guest to its native core", counts[core.OutcomeMigratedEvict])
	return t
}

// Figure2 reproduces the run-length histogram of the paper's Figure 2: the
// number of accesses to memory cached at non-native cores for an OCEAN run,
// binned by run length, on 64 cores/64 threads with first-touch placement.
// It returns the rendered table plus the raw histogram.
func Figure2(p Platform, scale, iters int) (*stats.Table, *stats.Hist) {
	tr := workload.Ocean(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: p.Seed})
	res := p.runScheme(tr, core.AlwaysMigrate{})
	h := res.RunLengths

	t := stats.NewTable(
		fmt.Sprintf("Figure 2 — accesses to non-native cores by run length (ocean, %d cores/%d threads, first touch)",
			p.Core.Mesh.Cores(), p.Threads),
		"run length", "runs", "accesses (runs x length)", "share of non-native accesses")
	var shown int64
	for l := 1; l < h.Bound(); l++ {
		if c := h.Count(l); c > 0 {
			accesses := int64(l) * c
			shown += accesses
			t.AddRow(l, c, accesses, fmt.Sprintf("%.1f%%", 100*float64(accesses)/float64(h.Sum())))
		}
	}
	if h.Overflow() > 0 {
		tail := res.NonNative - shown
		t.AddRow(fmt.Sprintf("%d+", h.Bound()), h.Overflow(), tail,
			fmt.Sprintf("%.1f%%", 100*float64(tail)/float64(h.Sum())))
	}
	return t, h
}

// Figure2Shape summarizes the paper's headline reading of Figure 2: "about
// half of the accesses migrate after one memory reference, while the other
// half keep accessing memory at the core where they have migrated."
func Figure2Shape(h *stats.Hist) (fracLen1, fracLong float64) {
	if h.Sum() == 0 {
		return 0, 0
	}
	fracLen1 = float64(h.Count(1)) / float64(h.Sum())
	var longMass int64
	for l := 8; l < h.Bound(); l++ {
		longMass += int64(l) * h.Count(l)
	}
	// Overflow mass: total minus accounted.
	var accounted int64
	for l := 1; l < h.Bound(); l++ {
		accounted += int64(l) * h.Count(l)
	}
	longMass += h.Sum() - accounted
	fracLong = float64(longMass) / float64(h.Sum())
	return fracLen1, fracLong
}

// Figure3 exercises the EM²-RA flow of the paper's Figure 3 with a hybrid
// decision scheme and tabulates the path taken per access.
func Figure3(p Platform) *stats.Table {
	cfg := p.modelCore()
	tr := workload.Ocean(workload.Config{Threads: p.Threads, Scale: 64, Iters: 1, Seed: p.Seed})
	scheme := core.NewDistance(cfg.Mesh, 3)
	eng, err := core.NewEngine(cfg, p.firstTouch(), scheme)
	if err != nil {
		panic(err)
	}
	counts := make(map[core.Outcome]int64)
	if _, err := eng.Run(tr, func(_ int, _ core.AccessInfo, o core.Outcome) { counts[o]++ }); err != nil {
		panic(err)
	}
	t := stats.NewTable("Figure 3 — the life of a memory access under EM2-RA (path counts, distance<=3 decision)",
		"path", "accesses")
	t.AddRow("cacheable at current core -> access memory & continue", counts[core.OutcomeLocal])
	t.AddRow("decision: migrate to home core", counts[core.OutcomeMigrated]+counts[core.OutcomeMigratedEvict])
	t.AddRow("decision: remote request + data/ack reply", counts[core.OutcomeRemote])
	return t
}

// TableT1 measures the DP oracle's scaling: near-linear in trace length N
// for the sparse variant and multiplied by the core count for the dense
// recurrence, with O(N) scheme evaluation (§3's complexity claims).
func TableT1(p Platform, lengths []int) *stats.Table {
	t := stats.NewTable("T1 — §3 dynamic program runtime (optimal decision sequence)",
		"N (accesses)", "P (cores)", "dense DP", "sparse DP", "O(N) scheme eval")
	cfg := p.modelCore()
	for _, n := range lengths {
		steps := syntheticSteps(n, cfg.Mesh.Cores(), p.Seed)
		t0 := time.Now()
		dense := oracle.OptimalDense(cfg, steps, 0)
		dDense := time.Since(t0)
		t1 := time.Now()
		sparse := oracle.OptimalSparse(cfg, steps, 0)
		dSparse := time.Since(t1)
		t2 := time.Now()
		oracle.EvaluateScheme(cfg, steps, 0, core.AlwaysMigrate{}, 0)
		dEval := time.Since(t2)
		if dense.Cost != sparse.Cost {
			panic("sim: dense/sparse optimum mismatch")
		}
		t.AddRow(n, cfg.Mesh.Cores(), dDense.String(), dSparse.String(), dEval.String())
	}
	return t
}

// syntheticSteps builds a bimodal step sequence (isolated accesses + runs)
// for DP timing.
func syntheticSteps(n, cores int, seed uint64) []oracle.Step {
	steps := make([]oracle.Step, 0, n)
	state := seed
	rnd := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	for len(steps) < n {
		home := geom.CoreID(rnd(cores))
		if rnd(2) == 0 {
			steps = append(steps, oracle.Step{Home: home})
		} else {
			run := 2 + rnd(20)
			for j := 0; j < run && len(steps) < n; j++ {
				steps = append(steps, oracle.Step{Home: home, Write: j%3 == 0})
			}
		}
	}
	return steps
}

// TableT2 compares decision schemes against the DP oracle across workloads
// (§3's claim: the hybrid, decided well, beats both pure EM² and pure
// remote access; the oracle upper-bounds everything).
func TableT2(p Platform, workloads []string, scale, iters int) *stats.Table {
	cfg := p.modelCore()
	t := stats.NewTable("T2 — decision schemes vs DP oracle (total network cycles, lower is better)",
		"workload", "always-migrate", "always-remote", "distance<=3", "history>=2", "ORACLE (DP)")
	for _, name := range workloads {
		g, err := workload.Get(name)
		if err != nil {
			panic(err)
		}
		tr := g(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: p.Seed})
		am := p.runScheme(tr, core.AlwaysMigrate{}).Cycles
		ar := p.runScheme(tr, core.AlwaysRemote{}).Cycles
		di := p.runScheme(tr, core.NewDistance(cfg.Mesh, 3)).Cycles
		hi := p.runScheme(tr, core.NewHistory(2)).Cycles
		opt := oracle.OptimalForTrace(cfg, tr, p.firstTouch()).Cost
		t.AddRow(name, am, ar, di, hi, opt)
	}
	return t
}

// TableT3 compares stack-depth schemes against the depth DP (§4's claim:
// the same model framework bounds depth-decision schemes).
func TableT3(p Platform, scale, iters int) *stats.Table {
	ccfg := p.modelCore()
	scfg := p.Stack
	base := workload.Ocean(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: p.Seed})
	tr := workload.WithStackDeltas(base, p.Seed+1)
	steps := stackm.StepsForTrace(tr, p.firstTouch(), ccfg.Mesh.Cores())

	t := stats.NewTable("T3 — stack-depth schemes vs depth DP (ocean with stack deltas)",
		"scheme", "cycles", "migrations", "forced returns", "mean depth", "bits moved")
	for _, mk := range []func() stackm.DepthScheme{
		func() stackm.DepthScheme { return stackm.MinimalDepth{} },
		func() stackm.DepthScheme { return stackm.FixedDepth{K: 2} },
		func() stackm.DepthScheme { return stackm.FixedDepth{K: 4} },
		func() stackm.DepthScheme { return stackm.HalfDepth{Capacity: scfg.Capacity} },
		func() stackm.DepthScheme { return stackm.FullDepth{} },
	} {
		c := stackm.SchemeCostForTrace(ccfg, scfg, steps, ccfg.Mesh.Cores(), mk)
		t.AddRow(mk().Name(), c.Cycles, c.Migrations, c.ForcedReturns,
			fmt.Sprintf("%.2f", c.MeanDepth()), c.BitsMoved)
	}
	opt := stackm.OptimalDepthCostForTrace(ccfg, scfg, steps, ccfg.Mesh.Cores())
	t.AddRow("ORACLE (depth DP)", opt, "-", "-", "-", "-")
	return t
}

// TableT4 compares EM² against the directory-coherence baseline on the §2
// axes: network cycles, traffic, and data replication.
func TableT4(p Platform, workloads []string, scale, iters int) *stats.Table {
	t := stats.NewTable("T4 — EM2 vs directory cache coherence (same mesh, links, and placement)",
		"workload", "EM2 cycles", "EM2 traffic", "EM2 repl", "CC cycles", "CC traffic", "CC repl", "CC inval+fwd")
	for _, name := range workloads {
		g, err := workload.Get(name)
		if err != nil {
			panic(err)
		}
		tr := g(workload.Config{Threads: p.Threads, Scale: scale, Iters: iters, Seed: p.Seed})

		em := p.runScheme(tr, core.AlwaysMigrate{})

		ccEng, err := dircc.NewEngine(p.CC, p.firstTouch())
		if err != nil {
			panic(err)
		}
		cc, err := ccEng.Run(tr)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, em.Cycles, em.Traffic, "1.00",
			cc.Cycles, cc.Traffic, fmt.Sprintf("%.2f", cc.ReplicationFactor),
			cc.Invalidations+cc.Forwards)
	}
	return t
}

// TableT5 tabulates migrated context sizes: the register-file context the
// paper cites (1–2 Kbit) against stack contexts at increasing depths —
// the motivation for §4.
func TableT5(p Platform) *stats.Table {
	t := stats.NewTable("T5 — migrated context size (bits) and one-way migration latency across the 8x8 mesh diameter",
		"context", "bits", "flits", "latency (cycles)")
	cfg := p.Core
	hops := cfg.Mesh.Diameter()
	row := func(name string, bits int) {
		t.AddRow(name, bits, cfg.NoC.Flits(bits), cfg.NoC.Latency(hops, bits))
	}
	row("register file (32x32b + PC)", cfg.ContextBits)
	row("register file + TLB (paper upper bound)", 2048)
	for _, d := range []int{1, 2, 4, 8, 16} {
		if d <= p.Stack.Capacity {
			row(fmt.Sprintf("stack, depth %d", d), p.Stack.CtxBits(d))
		}
	}
	return t
}

package sim

import (
	"strings"
	"testing"
)

// TestM3RuntimeMatchesModel is the acceptance test for the M3 experiment:
// on every deterministic micro-workload, the concurrent runtime's message
// counts — on the channel transport AND across a TCP cluster — must equal
// the §3 trace-model predictions exactly, for all four decision schemes;
// the schedule-dependent litmus rows must be SC- and litmus-clean. The
// table must also be byte-deterministic (it is part of the sweep registry).
func TestM3RuntimeMatchesModel(t *testing.T) {
	p := SmallPlatform()
	table := M3(p)
	if table.NumRows() == 0 {
		t.Fatal("M3 produced no rows")
	}
	schemes := make(map[string]bool)
	for _, row := range table.Rows() {
		verdict := row[len(row)-1]
		schemes[row[1]] = true
		if verdict != "exact" && verdict != "sc+litmus ok" {
			t.Errorf("%s/%s: %s", row[0], row[1], verdict)
		}
	}
	for _, want := range m3Schemes {
		if !schemes[want] {
			t.Errorf("scheme %s missing from M3 rows", want)
		}
	}
	if !testing.Short() {
		if again := M3(p).String(); again != table.String() {
			t.Error("M3 table is not deterministic across runs")
		}
	}
}

// TestM3TableShape pins the header contract downstream tooling reads.
func TestM3TableShape(t *testing.T) {
	cs := M3Cells(SmallPlatform())
	if cs.Name != "m3" {
		t.Errorf("cell set name %q", cs.Name)
	}
	if len(cs.Cells) != 5 {
		t.Errorf("cells = %d, want 3 micro + 2 litmus", len(cs.Cells))
	}
	joined := strings.Join(cs.Headers, "|")
	for _, want := range []string{"workload", "scheme", "migrations", "remote ops", "context flits", "check"} {
		if !strings.Contains(joined, want) {
			t.Errorf("headers %v missing %q", cs.Headers, want)
		}
	}
}

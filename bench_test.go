// Benchmarks regenerating every evaluation artifact of the paper (Figures
// 1–3) and every derived table (T1–T5 of DESIGN.md), plus ablations over the
// design parameters the paper discusses (interconnect bandwidth, guest
// context count). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dircc"
	"repro/internal/geom"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/oracle"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/stackm"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// BenchmarkSweepParallelism measures the experiment-sweep harness itself: a
// multi-cell sweep (T1's length grid plus T2's and T4's workload grids, 16
// independent cells) at increasing worker counts. Results are byte-identical
// at every level (the sweep package's regression tests pin that); only
// wall-clock changes, so BENCH_*.json tracks the parallel speedup
// trajectory. On a machine with >= 4 cores, parallel=4 should be >= 2x
// parallel=1; on a single-core box the levels coincide.
func BenchmarkSweepParallelism(b *testing.B) {
	p := sim.SmallPlatform()
	exps, err := sweep.Match("t1|t2|t4")
	if err != nil {
		b.Fatal(err)
	}
	params := sweep.Params{Scale: 48, Iters: 1, Lengths: []int{2000, 4000, 8000, 16000}}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := sweep.Run(p, exps, sweep.Options{Parallel: workers, Params: params})
				if len(results) != 3 {
					b.Fatal("sweep incomplete")
				}
			}
		})
	}
}

// BenchmarkSweepAllSerial regenerates every registered experiment through
// the registry on one worker — the end-to-end cost of `figures all` and the
// serial baseline the parallel levels above are compared against.
func BenchmarkSweepAllSerial(b *testing.B) {
	p := sim.SmallPlatform()
	params := sweep.Params{Scale: 48, Iters: 1, Lengths: []int{2000, 4000}}
	for i := 0; i < b.N; i++ {
		results := sweep.Run(p, sweep.All(), sweep.Options{Parallel: 1, Params: params})
		if len(results) != 8 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkFigure1EM2AccessFlow drives the Figure 1 access flow (local hit,
// migration, migration-with-eviction) on the 64-core platform.
func BenchmarkFigure1EM2AccessFlow(b *testing.B) {
	p := sim.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		tbl := sim.Figure1(p)
		if tbl.NumRows() != 3 {
			b.Fatal("figure 1 incomplete")
		}
	}
}

// BenchmarkFigure2OceanRunLength regenerates the Figure 2 run-length
// histogram: OCEAN, 64 cores/64 threads, first-touch placement.
func BenchmarkFigure2OceanRunLength(b *testing.B) {
	p := sim.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		_, h := sim.Figure2(p, 256, 2)
		f1, fl := sim.Figure2Shape(h)
		if f1 < 0.2 || fl < 0.15 {
			b.Fatalf("figure 2 shape off: %.2f/%.2f", f1, fl)
		}
	}
}

// BenchmarkFigure3EM2RAAccessFlow drives the Figure 3 hybrid flow
// (decision → migrate or remote round trip).
func BenchmarkFigure3EM2RAAccessFlow(b *testing.B) {
	p := sim.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		tbl := sim.Figure3(p)
		if tbl.NumRows() != 3 {
			b.Fatal("figure 3 incomplete")
		}
	}
}

// BenchmarkTableT1OracleDP measures the §3 dynamic program itself — the
// paper's O(N·P²) bound against the dense and sparse implementations and
// the O(N) scheme evaluation, across trace lengths and core counts.
func BenchmarkTableT1OracleDP(b *testing.B) {
	for _, cores := range []int{16, 64, 256} {
		cfg := core.DefaultConfig()
		cfg.Mesh = geom.SquareMesh(cores)
		cfg.GuestContexts = 0
		for _, n := range []int{1024, 8192} {
			steps := syntheticSteps(n, cores)
			b.Run(fmt.Sprintf("dense/P=%d/N=%d", cores, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					oracle.OptimalDense(cfg, steps, 0)
				}
			})
			b.Run(fmt.Sprintf("sparse/P=%d/N=%d", cores, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					oracle.OptimalSparse(cfg, steps, 0)
				}
			})
			b.Run(fmt.Sprintf("eval/P=%d/N=%d", cores, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					oracle.EvaluateScheme(cfg, steps, 0, core.AlwaysMigrate{}, 0)
				}
			})
		}
	}
}

func syntheticSteps(n, cores int) []oracle.Step {
	steps := make([]oracle.Step, 0, n)
	state := uint64(2011)
	rnd := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	for len(steps) < n {
		home := geom.CoreID(rnd(cores))
		run := 1
		if rnd(2) == 1 {
			run = 2 + rnd(16)
		}
		for j := 0; j < run && len(steps) < n; j++ {
			steps = append(steps, oracle.Step{Home: home, Write: j%3 == 0})
		}
	}
	return steps
}

// BenchmarkTableT2DecisionSchemes runs each decision scheme (and the
// oracle) over the OCEAN workload on the 64-core platform.
func BenchmarkTableT2DecisionSchemes(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.GuestContexts = 0
	tr := workload.Ocean(workload.Config{Threads: 64, Scale: 128, Iters: 1, Seed: 2011})
	schemes := map[string]func() core.Scheme{
		"always-migrate": func() core.Scheme { return core.AlwaysMigrate{} },
		"always-remote":  func() core.Scheme { return core.AlwaysRemote{} },
		"distance3":      func() core.Scheme { return core.NewDistance(cfg.Mesh, 3) },
		"history2":       func() core.Scheme { return core.NewHistory(2) },
	}
	for name, mk := range schemes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(cfg, placement.NewFirstTouch(4096), mk())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("oracle-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oracle.OptimalForTrace(cfg, tr, placement.NewFirstTouch(4096))
		}
	})
}

// BenchmarkTableT3StackDepth runs the §4 depth schemes and the depth DP.
func BenchmarkTableT3StackDepth(b *testing.B) {
	ccfg := core.DefaultConfig()
	ccfg.GuestContexts = 0
	scfg := stackm.DefaultConfig()
	tr := workload.WithStackDeltas(
		workload.Ocean(workload.Config{Threads: 64, Scale: 128, Iters: 1, Seed: 2011}), 1)
	steps := stackm.StepsForTrace(tr, placement.NewFirstTouch(4096), ccfg.Mesh.Cores())
	b.Run("fixed-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stackm.SchemeCostForTrace(ccfg, scfg, steps, ccfg.Mesh.Cores(),
				func() stackm.DepthScheme { return stackm.FixedDepth{K: 4} })
		}
	})
	b.Run("depth-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stackm.OptimalDepthCostForTrace(ccfg, scfg, steps, ccfg.Mesh.Cores())
		}
	})
}

// BenchmarkTableT4EM2vsCC runs the EM² engine and the directory-coherence
// baseline over the same sharing-heavy workload.
func BenchmarkTableT4EM2vsCC(b *testing.B) {
	tr := workload.PingPong(workload.Config{Threads: 64, Scale: 128, Iters: 1, Seed: 2011})
	b.Run("em2", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.GuestContexts = 0
		for i := 0; i < b.N; i++ {
			eng, err := core.NewEngine(cfg, placement.NewFirstTouch(4096), core.AlwaysMigrate{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(tr, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dircc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := dircc.NewEngine(dircc.DefaultConfig(), placement.NewFirstTouch(4096))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableT5ContextSize measures context serialization cost: the
// migration latency computation across context sizes (register file vs
// stack depths), the quantity Table T5 tabulates.
func BenchmarkTableT5ContextSize(b *testing.B) {
	cfg := core.DefaultConfig()
	scfg := stackm.DefaultConfig()
	sizes := map[string]int{
		"register-1056b": cfg.ContextBits,
		"register-2048b": 2048,
		"stack-d1":       scfg.CtxBits(1),
		"stack-d4":       scfg.CtxBits(4),
		"stack-d16":      scfg.CtxBits(16),
	}
	for name, bits := range sizes {
		b.Run(name, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += cfg.MigrationCost(0, 63, bits)
			}
			_ = sink
		})
	}
}

// BenchmarkAblationFlitWidth sweeps interconnect bandwidth — the paper
// argues context-size reduction matters "especially on low-bandwidth
// interconnects"; narrower flits inflate migration serialization.
func BenchmarkAblationFlitWidth(b *testing.B) {
	tr := workload.Ocean(workload.Config{Threads: 64, Scale: 96, Iters: 1, Seed: 2011})
	for _, flit := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("flit%d", flit), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.NoC.FlitBits = flit
			cfg.GuestContexts = 0
			var cycles int64
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(cfg, placement.NewFirstTouch(4096), core.AlwaysMigrate{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(tr, nil)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "model-cycles")
		})
	}
}

// BenchmarkAblationGuestContexts sweeps the guest-context pool size, the
// knob behind Figure 1's eviction path.
func BenchmarkAblationGuestContexts(b *testing.B) {
	tr := workload.Hotspot(workload.Config{Threads: 64, Scale: 128, Iters: 1, Seed: 2011})
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("guests%d", g), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.GuestContexts = g
			var evictions int64
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(cfg, placement.NewFirstTouch(4096), core.AlwaysMigrate{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(tr, nil)
				if err != nil {
					b.Fatal(err)
				}
				evictions = res.Evictions
			}
			b.ReportMetric(float64(evictions), "evictions")
		})
	}
}

// BenchmarkNetworkReplayOcean replays OCEAN's EM² traffic through the
// event-driven mesh network (wormhole serialization + per-VN link
// contention) instead of the zero-load cost model.
func BenchmarkNetworkReplayOcean(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.GuestContexts = 0
	tr := workload.Ocean(workload.Config{Threads: 64, Scale: 96, Iters: 1, Seed: 2011})
	for i := 0; i < b.N; i++ {
		res, err := core.NetworkReplay(cfg, tr, placement.NewFirstTouch(4096), core.AlwaysMigrate{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Makespan), "makespan-cycles")
	}
}

// BenchmarkConcurrentRuntime measures the goroutine-based EM² executing a
// contended atomic-counter program with real context migration.
func BenchmarkConcurrentRuntime(b *testing.B) {
	prog := isa.MustAssemble(`
		addi r2, r0, 50
		addi r3, r0, 1
	loop:
		faa  r4, 0(r0), r3
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	`)
	for i := 0; i < b.N; i++ {
		cfg := machine.Config{
			Mesh:          geom.SquareMesh(16),
			GuestContexts: 2,
			Placement:     placement.NewStriped(64, 16),
		}
		threads := make([]machine.ThreadSpec, 16)
		for t := range threads {
			threads[t] = machine.ThreadSpec{Program: prog}
		}
		m, err := machine.New(cfg, len(threads))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(threads); err != nil {
			b.Fatal(err)
		}
	}
}
